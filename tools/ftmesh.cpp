// The ftmesh command-line driver: run simulations, sweep rates, find
// saturation points, and inspect fault patterns without writing C++.
//
//   ftmesh run        [--config f] [--algorithm A] [--rate R] [--faults N]
//                     [--link-faults N] [--cycles N] [--seed S] [--json]
//                     [--save-config f]
//                     [--fault-schedule SPEC] [--max-retries N]
//                     [--backoff N] [--patience N] [--drain]
//                     [--tiles N] [--step-threads N] [--shard-alloc 0|1]
//                     [--trace f] [--trace-format jsonl|chrome]
//                     [--metrics-interval N] [--metrics-out f.csv]
//   ftmesh sweep      [--algorithm A] [--from R0] [--to R1] [--steps N] ...
//   ftmesh saturation [--algorithm A] [--threshold T] ...
//   ftmesh faults     [--faults N] [--seed S]
//   ftmesh campaign   [--algorithms A,B,..] [--rates r1,r2,..]
//                     [--fault-counts 0,5,10] [--patterns N] [--out f.csv]
//                     [--threads N] [--metrics-interval N] [--metrics-out f.csv]
//                     [--dir DIR] [--resume DIR] [--shard i/N]
//                     [--checkpoint-every N] [--progress[=force]]
//   ftmesh campaign-merge [--out f.csv] DIR [DIR...]
//   ftmesh verify     [--algo A|all|broken-demo] [--faults 0,5,10]
//                     [--link-faults N] [--seed S] [--width W] [--height H]
//                     [--vcs V] [--threads N]
//   ftmesh audit      [--algo A|all|broken-demo] [--patterns clean,center,
//                     boundary,link,link-edge,random] [--faults N,..]
//                     [--link-faults N] [--seed S] [--width W] [--height H]
//                     [--vcs V] [--threads N] [--max-violations N] [--json]
//   ftmesh reliability [--width W] [--height H] [--node-prob P]
//                     [--link-prob Q] [--trials N] [--seed S] [--json]
//   ftmesh algorithms
//
// Flags mirror SimConfig fields; a --config file provides the base and
// explicit flags override it.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "ftmesh/analysis/reliability_model.hpp"
#include "ftmesh/analysis/saturation.hpp"
#include "ftmesh/campaign/csv.hpp"
#include "ftmesh/campaign/merge.hpp"
#include "ftmesh/campaign/progress.hpp"
#include "ftmesh/campaign/stream.hpp"
#include "ftmesh/core/campaign.hpp"
#include "ftmesh/core/config_io.hpp"
#include "ftmesh/core/experiment.hpp"
#include "ftmesh/report/cli.hpp"
#include "ftmesh/report/csv.hpp"
#include "ftmesh/report/heatmap.hpp"
#include "ftmesh/report/json.hpp"
#include "ftmesh/report/table.hpp"
#include "ftmesh/trace/metrics_recorder.hpp"
#include "ftmesh/trace/trace_sink.hpp"
#include "ftmesh/verify/audit.hpp"
#include "ftmesh/verify/broken_demo.hpp"
#include "ftmesh/verify/verifier.hpp"

namespace {

using ftmesh::core::SimConfig;
using ftmesh::report::Cli;

SimConfig config_from_cli(const Cli& cli) {
  SimConfig cfg;
  if (const auto path = cli.get("config", ""); !path.empty()) {
    cfg = ftmesh::core::load_config_file(path);
  }
  cfg.algorithm = cli.get("algorithm", cfg.algorithm);
  cfg.traffic = cli.get("traffic", cfg.traffic);
  cfg.width = static_cast<int>(cli.get_int("width", cfg.width));
  cfg.height = static_cast<int>(cli.get_int("height", cfg.height));
  cfg.injection_rate = cli.get_double("rate", cfg.injection_rate);
  cfg.message_length =
      static_cast<std::uint32_t>(cli.get_int("length", cfg.message_length));
  cfg.total_vcs = static_cast<int>(cli.get_int("vcs", cfg.total_vcs));
  cfg.fault_count = static_cast<int>(cli.get_int("faults", cfg.fault_count));
  cfg.link_fault_count =
      static_cast<int>(cli.get_int("link-faults", cfg.link_fault_count));
  cfg.total_cycles =
      static_cast<std::uint64_t>(cli.get_int("cycles", static_cast<std::int64_t>(cfg.total_cycles)));
  cfg.warmup_cycles = static_cast<std::uint64_t>(
      cli.get_int("warmup", static_cast<std::int64_t>(cfg.total_cycles / 3)));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", static_cast<std::int64_t>(cfg.seed)));
  cfg.buffer_depth = static_cast<int>(cli.get_int("buffer-depth", cfg.buffer_depth));
  cfg.watchdog_patience = static_cast<std::uint64_t>(
      cli.get_int("patience", static_cast<std::int64_t>(cfg.watchdog_patience)));
  cfg.fault_schedule = cli.get("fault-schedule", cfg.fault_schedule);
  cfg.fault_max_retries =
      static_cast<int>(cli.get_int("max-retries", cfg.fault_max_retries));
  cfg.fault_retry_backoff = static_cast<std::uint64_t>(cli.get_int(
      "backoff", static_cast<std::int64_t>(cfg.fault_retry_backoff)));
  cfg.scan_mode = cli.get("scan-mode", cfg.scan_mode);
  cfg.tiles = static_cast<int>(cli.get_int("tiles", cfg.tiles));
  cfg.step_threads =
      static_cast<int>(cli.get_int("step-threads", cfg.step_threads));
  cfg.route_cache =
      cli.get_int("route-cache", cfg.route_cache ? 1 : 0) != 0;
  cfg.recycle_messages =
      cli.get_int("recycle-messages", cfg.recycle_messages ? 1 : 0) != 0;
  cfg.shard_alloc = cli.get_int("shard-alloc", cfg.shard_alloc ? 1 : 0) != 0;
  if (cli.flag("kernel-stats")) cfg.collect_kernel_stats = true;
  cfg.metrics_interval = static_cast<std::uint64_t>(cli.get_int(
      "metrics-interval", static_cast<std::int64_t>(cfg.metrics_interval)));
  for (const auto& w : cfg.warnings()) std::cerr << "warning: " << w << "\n";
  return cfg;
}

/// --trace/--trace-format: opens the file and attaches the matching sink.
/// Returns nullptr (and leaves `os` closed) when tracing is not requested.
std::unique_ptr<ftmesh::trace::TraceSink> make_trace_sink(const Cli& cli,
                                                          const SimConfig& cfg,
                                                          std::ofstream& os) {
  const auto path = cli.get("trace", "");
  if (path.empty()) return nullptr;
  os.open(path);
  if (!os) throw std::runtime_error("cannot write " + path);
  const auto format = cli.get("trace-format", "jsonl");
  if (format == "jsonl") {
    return std::make_unique<ftmesh::trace::JsonlSink>(os);
  }
  if (format == "chrome") {
    return std::make_unique<ftmesh::trace::ChromeTraceSink>(os, cfg.width);
  }
  throw std::invalid_argument("unknown --trace-format: " + format +
                              " (expected jsonl or chrome)");
}

int cmd_run(const Cli& cli) {
  auto cfg = config_from_cli(cli);
  if (const auto path = cli.get("save-config", ""); !path.empty()) {
    ftmesh::core::save_config_file(path, cfg);
    std::cerr << "wrote " << path << "\n";
  }
  ftmesh::core::Simulator sim(cfg);
  std::ofstream trace_os;
  const auto sink = make_trace_sink(cli, cfg, trace_os);
  if (sink) sim.set_trace_sink(sink.get());
  auto r = sim.run();
  // --drain: stop generation after the schedule and keep the clock running
  // until every message delivers or aborts; with a fault schedule this makes
  // the accounting identity (generated == delivered + aborted) checkable,
  // and the exit code reflects it.
  std::uint64_t drained_cycles = 0;
  if (cli.flag("drain") && !r.deadlock) {
    drained_cycles = sim.drain();
    r = sim.snapshot();
  }
  if (sink) sink->flush();
  if (const auto path = cli.get("metrics-out", ""); !path.empty()) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot write " + path);
    ftmesh::trace::write_metrics_csv(os, r.metrics);
    std::cerr << "wrote " << r.metrics.samples.size() << " metrics samples to "
              << path << "\n";
  }
  const bool leak =
      cli.flag("drain") && r.reliability.enabled && r.reliability.in_flight_end != 0;
  if (cli.flag("json")) {
    ftmesh::report::write_result_json(std::cout, cfg, r);
    return (r.deadlock || leak) ? 1 : 0;
  }
  ftmesh::report::Table table({"metric", "value"});
  const auto row = [&](const std::string& k, const std::string& v) {
    table.add_row({k, v});
  };
  row("algorithm", cfg.algorithm);
  row("faults", std::to_string(r.faulty_nodes) + " faulty + " +
                    std::to_string(r.deactivated_nodes) + " deactivated");
  row("cycles run", std::to_string(r.cycles_run));
  row("messages delivered", std::to_string(r.latency.delivered));
  row("mean latency", ftmesh::report::format_double(r.latency.mean, 1));
  row("mean network latency",
      ftmesh::report::format_double(r.latency.mean_network, 1));
  row("p99 latency", ftmesh::report::format_double(r.latency.p99, 1));
  row("accepted flits/node/cycle",
      ftmesh::report::format_double(r.throughput.accepted_flits_per_node_cycle, 4));
  row("accepted/offered",
      ftmesh::report::format_double(r.throughput.accepted_fraction, 3));
  row("mean hops", ftmesh::report::format_double(r.latency.mean_hops, 2));
  row("deadlock", r.deadlock ? "YES" : "no");
  if (!r.metrics.samples.empty()) {
    row("metrics samples",
        std::to_string(r.metrics.samples.size()) + " every " +
            std::to_string(r.metrics.interval) + " cycles");
  }
  if (r.kernel.enabled) {
    const auto& k = r.kernel;
    row("route-cache hit rate",
        ftmesh::report::format_double(100.0 * k.cache_hit_rate, 1) + "% (" +
            std::to_string(k.cache_hits) + "/" +
            std::to_string(k.cache_lookups) + ", " +
            std::to_string(k.cache_invalidations) + " invalidations)");
    row("active nodes route/switch",
        ftmesh::report::format_double(k.mean_route_nodes, 1) + " / " +
            ftmesh::report::format_double(k.mean_switch_nodes, 1));
    row("active inject/link-regs",
        ftmesh::report::format_double(k.mean_inject_nodes, 1) + " / " +
            ftmesh::report::format_double(k.mean_link_regs, 1));
  }
  if (r.reliability.enabled) {
    const auto& rel = r.reliability;
    row("fault events", std::to_string(rel.fault_events_applied) + " applied, " +
                            std::to_string(rel.fault_events_rejected) + " rejected");
    row("node failures/repairs", std::to_string(rel.node_failures) + " / " +
                                     std::to_string(rel.node_repairs));
    row("f-rings reused/rebuilt", std::to_string(rel.rings_reused) + " / " +
                                      std::to_string(rel.rings_rebuilt));
    row("messages", std::to_string(rel.generated) + " generated = " +
                        std::to_string(rel.delivered) + " delivered + " +
                        std::to_string(rel.aborted) + " aborted + " +
                        std::to_string(rel.in_flight_end) + " in flight");
    row("flushed / retransmitted", std::to_string(rel.messages_flushed) + " / " +
                                       std::to_string(rel.retransmissions));
    row("recovered messages", std::to_string(rel.recovered_messages));
    row("recovery latency mean/p95",
        ftmesh::report::format_double(rel.recovery_latency_mean, 1) + " / " +
            ftmesh::report::format_double(rel.recovery_latency_p95, 1));
    row("post-fault throughput",
        ftmesh::report::format_double(rel.post_fault_throughput, 4));
    if (drained_cycles > 0) row("drain cycles", std::to_string(drained_cycles));
  }
  table.print(std::cout);
  return (r.deadlock || leak) ? 1 : 0;
}

int cmd_sweep(const Cli& cli) {
  auto base = config_from_cli(cli);
  const double from = cli.get_double("from", 0.0005);
  const double to = cli.get_double("to", 0.005);
  const int steps = static_cast<int>(cli.get_int("steps", 8));
  std::vector<SimConfig> configs;
  std::vector<double> rates;
  for (int i = 0; i < steps; ++i) {
    const double rate =
        from + (to - from) * static_cast<double>(i) / std::max(1, steps - 1);
    rates.push_back(rate);
    auto cfg = base;
    cfg.injection_rate = rate;
    configs.push_back(cfg);
  }
  const auto results = ftmesh::core::run_batch(configs);
  ftmesh::report::Table table(
      {"rate", "accepted/offered", "mean latency", "network latency"});
  for (int i = 0; i < steps; ++i) {
    const auto row = table.add_row();
    table.set(row, 0, rates[static_cast<std::size_t>(i)], 5);
    table.set(row, 1, results[static_cast<std::size_t>(i)].throughput.accepted_fraction, 3);
    table.set(row, 2, results[static_cast<std::size_t>(i)].latency.mean, 1);
    table.set(row, 3, results[static_cast<std::size_t>(i)].latency.mean_network, 1);
  }
  table.print(std::cout);
  return 0;
}

int cmd_saturation(const Cli& cli) {
  auto base = config_from_cli(cli);
  ftmesh::analysis::SaturationOptions opts;
  opts.lo = cli.get_double("from", 0.0002);
  opts.hi = cli.get_double("to", 0.01);
  opts.threshold = cli.get_double("threshold", 0.95);
  opts.iterations = static_cast<int>(cli.get_int("iterations", 7));
  const auto r = ftmesh::analysis::find_saturation_rate(base, opts);
  std::cout << base.algorithm << ": saturation at ~" << r.rate
            << " msg/node/cycle (accepted/offered " << r.accepted << ", "
            << r.simulations << " probe simulations)\n";
  return 0;
}

int cmd_faults(const Cli& cli) {
  const auto cfg = config_from_cli(cli);
  const ftmesh::topology::Mesh mesh(cfg.width, cfg.height);
  ftmesh::sim::Rng rng = ftmesh::sim::Rng(cfg.seed).derive(0xFA);
  const auto map = cfg.fault_count > 0
                       ? ftmesh::fault::FaultMap::random(mesh, cfg.fault_count, rng)
                       : ftmesh::fault::FaultMap(mesh);
  std::cout << map.faulty_count() << " faulty + " << map.deactivated_count()
            << " deactivated nodes, " << map.regions().size() << " region(s)\n";
  std::vector<double> zeros(static_cast<std::size_t>(mesh.node_count()), 0.0);
  ftmesh::report::HeatmapOptions opts;
  opts.show_scale = false;
  ftmesh::report::print_heatmap(std::cout, map, zeros, opts);
  return 0;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(text);
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// Streaming sink behind `ftmesh campaign`: writes the campaign CSV row by
// row as cells retire (memory stays flat however large the matrix), and
// optionally the per-pattern metrics time-series CSV alongside.
class CampaignCliSink : public ftmesh::campaign::CellSink {
 public:
  CampaignCliSink(std::ostream& csv_os, std::ostream* metrics_os)
      : csv_(csv_os), metrics_os_(metrics_os) {}

  // Headers are written on the first cell (or by finish() for an empty
  // shard) so a campaign that is refused up front leaves no partial output.
  void finish() {
    ensure_headers();
  }

  void on_cell(const ftmesh::campaign::CellRecord& record) override {
    ensure_headers();
    csv_.row(record.row);
    ++rows_;
    if (!metrics_) return;
    using ftmesh::report::format_double;
    for (std::size_t p = 0; p < record.runs.size(); ++p) {
      for (const auto& s : record.runs[p].metrics.samples) {
        metrics_->row({record.plan.algorithm,
                       format_double(record.plan.rate, 6),
                       std::to_string(record.plan.fault_count),
                       std::to_string(p), std::to_string(s.cycle),
                       std::to_string(s.delivered_messages),
                       format_double(s.accepted_flits_per_node_cycle, 6),
                       format_double(s.mean_latency, 3),
                       format_double(s.cache_hit_rate, 4),
                       std::to_string(s.flits_in_flight),
                       std::to_string(s.route_nodes),
                       std::to_string(s.switch_nodes),
                       std::to_string(s.inject_nodes),
                       std::to_string(s.link_regs),
                       std::to_string(s.ring_vcs_busy)});
      }
    }
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

 private:
  void ensure_headers() {
    if (headers_written_) return;
    headers_written_ = true;
    csv_.row(ftmesh::campaign::csv_columns());
    if (metrics_os_ != nullptr) {
      metrics_ = std::make_unique<ftmesh::report::CsvWriter>(*metrics_os_);
      metrics_->row({"algorithm", "rate", "fault_count", "pattern", "cycle",
                     "delivered_messages", "accepted_flits_per_node_cycle",
                     "mean_latency", "cache_hit_rate", "flits_in_flight",
                     "route_nodes", "switch_nodes", "inject_nodes",
                     "link_regs", "ring_vcs_busy"});
    }
  }

  bool headers_written_ = false;
  ftmesh::report::CsvWriter csv_;
  std::ostream* metrics_os_;
  std::unique_ptr<ftmesh::report::CsvWriter> metrics_;
  std::size_t rows_ = 0;
};

int cmd_campaign(const Cli& cli) {
  namespace cmp = ftmesh::campaign;
  cmp::CampaignSpec spec;
  spec.base = config_from_cli(cli);
  spec.algorithms = split_list(cli.get("algorithms", ""));
  for (const auto& r : split_list(cli.get("rates", ""))) {
    spec.rates.push_back(std::stod(r));
  }
  for (const auto& f : split_list(cli.get("fault-counts", ""))) {
    spec.fault_counts.push_back(std::stoi(f));
  }
  spec.patterns = static_cast<int>(cli.get_int("patterns", 1));
  spec.threads = static_cast<int>(cli.get_int("threads", 0));

  cmp::StreamOptions options;
  options.threads = spec.threads;
  if (const auto shard = cli.get("shard", ""); !shard.empty()) {
    options.shard = cmp::parse_shard(shard);
  }
  const auto resume_dir = cli.get("resume", "");
  const auto dir = cli.get("dir", "");
  if (!resume_dir.empty()) {
    options.checkpoint_dir = resume_dir;
    options.resume = true;
  } else if (cli.flag("resume")) {
    if (dir.empty()) {
      throw std::invalid_argument("--resume needs a checkpoint directory");
    }
    options.checkpoint_dir = dir;
    options.resume = true;
  } else {
    options.checkpoint_dir = dir;
  }
  options.checkpoint_every =
      static_cast<int>(cli.get_int("checkpoint-every", 32));

  // --progress: heartbeat on TTY stderr; --progress=force prints even when
  // stderr is redirected (throttled for logs).
  cmp::ProgressMode mode = cmp::ProgressMode::Off;
  if (cli.flag("progress")) {
    mode = cli.get("progress", "") == "force" ? cmp::ProgressMode::Force
                                              : cmp::ProgressMode::Auto;
  }
  cmp::ProgressMeter meter(mode);
  if (meter.enabled()) {
    options.progress = [&meter](const cmp::Progress& p) { meter.update(p); };
  }

  const auto metrics_path = cli.get("metrics-out", "");
  if (!metrics_path.empty() && options.resume) {
    throw std::invalid_argument(
        "--metrics-out cannot be combined with --resume: per-pattern time "
        "series of already-completed cells are not checkpointed");
  }

  std::ofstream csv_file;
  std::ostream* csv_os = &std::cout;
  const auto out = cli.get("out", "");
  if (!out.empty()) {
    csv_file.open(out);
    if (!csv_file) throw std::runtime_error("cannot write " + out);
    csv_os = &csv_file;
  }
  std::ofstream metrics_file;
  std::ostream* metrics_os = nullptr;
  if (!metrics_path.empty()) {
    metrics_file.open(metrics_path);
    if (!metrics_file) throw std::runtime_error("cannot write " + metrics_path);
    metrics_os = &metrics_file;
  }

  CampaignCliSink sink(*csv_os, metrics_os);
  const auto stats = cmp::run_streamed(spec, options, &sink);
  sink.finish();
  meter.finish(cmp::Progress{stats.cells_owned, stats.cells_owned,
                             stats.runs_executed, stats.runs_executed});

  if (!out.empty()) {
    std::cerr << "wrote " << sink.rows() << " cells to " << out;
    if (options.shard.count > 1) {
      std::cerr << " (shard " << options.shard.index << "/"
                << options.shard.count << " of " << stats.cells_total
                << " total; combine with ftmesh campaign-merge)";
    }
    std::cerr << "\n";
  }
  if (!metrics_path.empty()) {
    std::cerr << "wrote per-pattern metrics to " << metrics_path << "\n";
  }
  if (!options.checkpoint_dir.empty()) {
    std::cerr << "checkpoint: " << options.checkpoint_dir << " ("
              << stats.cells_restored << " restored, " << stats.cells_completed
              << " simulated)\n";
  }
  return 0;
}

int cmd_campaign_merge(const Cli& cli) {
  const std::vector<std::string>& dirs = cli.positional();
  if (dirs.empty()) {
    std::cerr << "usage: ftmesh campaign-merge [--out f.csv] DIR [DIR...]\n";
    return 2;
  }
  const auto out = cli.get("out", "");
  ftmesh::campaign::MergeReport report;
  if (!out.empty()) {
    std::ofstream os(out);
    if (!os) throw std::runtime_error("cannot write " + out);
    report = ftmesh::campaign::merge_campaign(dirs, os);
    std::cerr << "merged " << report.shards << " shard(s): " << report.cells
              << " cells to " << out << "\n";
  } else {
    report = ftmesh::campaign::merge_campaign(dirs, std::cout);
  }
  return 0;
}

// Static deadlock-freedom verification: enumerate the channel-dependency
// graph of each requested algorithm against each fault pattern and check
// acyclicity + progress.  Exit 0 only when every combination verifies.
int cmd_verify(const Cli& cli) {
  const auto cfg = config_from_cli(cli);
  const ftmesh::topology::Mesh mesh(cfg.width, cfg.height);

  std::vector<std::string> names;
  const auto algo_arg = cli.get("algo", cli.get("algorithm", "all"));
  if (algo_arg == "all") {
    names = ftmesh::routing::algorithm_names();
  } else {
    names = split_list(algo_arg);
  }

  std::vector<int> fault_counts;
  for (const auto& f : split_list(cli.get("faults", "0"))) {
    fault_counts.push_back(std::stoi(f));
  }
  if (fault_counts.empty()) fault_counts.push_back(0);

  ftmesh::verify::VerifyOptions vopts;
  vopts.threads = static_cast<int>(cli.get_int("threads", 0));

  const int link_faults =
      static_cast<int>(cli.get_int("link-faults", cfg.link_fault_count));

  bool all_ok = true;
  for (const int fault_count : fault_counts) {
    // Same derivation as the simulator so a verified pattern is exactly the
    // pattern a run with the same --faults/--link-faults/--seed would use.
    ftmesh::sim::Rng rng = ftmesh::sim::Rng(cfg.seed).derive(0xFA);
    const auto map =
        fault_count > 0 || link_faults > 0
            ? ftmesh::fault::FaultMap::random(mesh, fault_count, link_faults,
                                              rng)
            : ftmesh::fault::FaultMap(mesh);
    const ftmesh::fault::FRingSet rings(map);

    for (const auto& name : names) {
      std::unique_ptr<ftmesh::routing::RoutingAlgorithm> algo;
      if (name == "broken-demo") {
        algo = std::make_unique<ftmesh::verify::BrokenDemoRouting>(mesh, map);
      } else {
        ftmesh::routing::RoutingOptions ropts;
        ropts.total_vcs = cfg.total_vcs;
        ropts.misroute_limit = cfg.misroute_limit;
        ropts.xy_escape = cfg.xy_escape;
        algo = ftmesh::routing::make_algorithm(name, mesh, map, rings, ropts);
      }
      const auto report =
          ftmesh::verify::verify_algorithm(*algo, mesh, map, vopts);
      ftmesh::verify::print_report(std::cout, report, mesh);
      all_ok = all_ok && report.ok();
    }
  }
  std::cout << (all_ok ? "verification PASSED" : "verification FAILED")
            << "\n";
  return all_ok ? 0 : 1;
}

// Static routing-function audit: exhaustively enumerate reachable routing
// states per destination and check coverage, VC-role discipline, f-ring
// conformance and progress bounds against each algorithm's published
// AuditProfile.  Runs over a matrix of fault-pattern classes so both the
// fault-free function and its fortified behaviour are covered.
int cmd_audit(const Cli& cli) {
  const auto cfg = config_from_cli(cli);
  const ftmesh::topology::Mesh mesh(cfg.width, cfg.height);

  std::vector<std::string> names;
  const auto algo_arg = cli.get("algo", cli.get("algorithm", "all"));
  if (algo_arg == "all") {
    names = ftmesh::routing::algorithm_names();
  } else {
    names = split_list(algo_arg);
  }

  // ---- fault-pattern classes --------------------------------------------
  // clean     fault-free mesh
  // center    one interior block region (f-rings closed)
  // boundary  one block hugging the west edge (f-rings open / chain case)
  // link      one isolated interior dead link (degenerate inverted-box
  //           region: partial-router degradation, nothing deactivated)
  // link-edge a dead link on the mesh boundary (open f-chain case)
  // random    FaultMap::random with the simulator's --faults/--link-faults/
  //           --seed derivation, one pattern per entry of --faults
  using ftmesh::fault::FaultMap;
  using ftmesh::fault::Rect;
  using ftmesh::topology::Coord;
  using ftmesh::topology::Direction;
  std::vector<std::pair<std::string, FaultMap>> patterns;
  const auto wanted = split_list(
      cli.get("patterns", "clean,center,boundary,link,link-edge,random"));
  const auto has = [&wanted](const char* p) {
    return std::find(wanted.begin(), wanted.end(), p) != wanted.end();
  };
  if (has("clean")) patterns.emplace_back("clean", FaultMap(mesh));
  if (has("center") && cfg.width >= 5 && cfg.height >= 5) {
    const int cx = cfg.width / 2;
    const int cy = cfg.height / 2;
    patterns.emplace_back(
        "center", FaultMap::from_blocks(mesh, {Rect{cx - 1, cy - 1, cx, cy}}));
  }
  if (has("boundary") && cfg.width >= 4 && cfg.height >= 5) {
    const int cy = cfg.height / 2;
    patterns.emplace_back(
        "boundary", FaultMap::from_blocks(mesh, {Rect{0, cy - 1, 0, cy}}));
  }
  if (has("link") && cfg.width >= 5 && cfg.height >= 5) {
    const Coord a{cfg.width / 2 - 1, cfg.height / 2};
    patterns.emplace_back(
        "link", FaultMap::from_state(mesh, {}, {{a, Direction::XPlus}}));
  }
  if (has("link-edge") && cfg.width >= 4 && cfg.height >= 4) {
    const Coord a{cfg.width / 2 - 1, 0};
    patterns.emplace_back(
        "link-edge", FaultMap::from_state(mesh, {}, {{a, Direction::XPlus}}));
  }
  if (has("random")) {
    std::vector<int> fault_counts;
    for (const auto& f : split_list(cli.get("faults", "3"))) {
      fault_counts.push_back(std::stoi(f));
    }
    const int link_faults =
        static_cast<int>(cli.get_int("link-faults", cfg.link_fault_count));
    for (const int fault_count : fault_counts) {
      if (fault_count <= 0 && link_faults <= 0) continue;
      ftmesh::sim::Rng rng = ftmesh::sim::Rng(cfg.seed).derive(0xFA);
      std::string label = "random-" + std::to_string(fault_count);
      if (link_faults > 0) label += "+" + std::to_string(link_faults) + "L";
      patterns.emplace_back(
          label, FaultMap::random(mesh, fault_count, link_faults, rng));
    }
  }

  ftmesh::verify::AuditOptions aopts;
  aopts.threads = static_cast<int>(cli.get_int("threads", 0));
  aopts.max_violations = static_cast<std::size_t>(
      std::max<std::int64_t>(0, cli.get_int("max-violations", 16)));

  const bool json = cli.flag("json");
  ftmesh::report::JsonWriter jw(std::cout);
  if (json) jw.begin_array();

  bool all_ok = true;
  for (const auto& [label, map] : patterns) {
    const ftmesh::fault::FRingSet rings(map);
    for (const auto& name : names) {
      std::unique_ptr<ftmesh::routing::RoutingAlgorithm> algo;
      if (name == "broken-demo") {
        algo = std::make_unique<ftmesh::verify::BrokenDemoRouting>(mesh, map);
      } else {
        ftmesh::routing::RoutingOptions ropts;
        ropts.total_vcs = cfg.total_vcs;
        ropts.misroute_limit = cfg.misroute_limit;
        ropts.xy_escape = cfg.xy_escape;
        algo = ftmesh::routing::make_algorithm(name, mesh, map, rings, ropts);
      }
      const auto report =
          ftmesh::verify::audit_algorithm(*algo, mesh, map, rings, aopts);
      all_ok = all_ok && report.ok();
      if (json) {
        jw.begin_object();
        jw.key("algorithm").value(report.algorithm);
        jw.key("pattern").value(label);
        jw.key("width").value(report.width);
        jw.key("height").value(report.height);
        jw.key("total_vcs").value(report.total_vcs);
        jw.key("faulty").value(report.faulty);
        jw.key("deactivated").value(report.deactivated);
        jw.key("states_explored").value(report.states_explored);
        jw.key("candidates_checked").value(report.candidates_checked);
        jw.key("violations").value(report.violation_count);
        jw.key("ok").value(report.ok());
        jw.key("witnesses").begin_array();
        for (const auto& v : report.violations) {
          jw.begin_object();
          jw.key("check").value(ftmesh::verify::audit_check_name(v.check));
          jw.key("at").begin_array().value(v.at.x).value(v.at.y).end_array();
          jw.key("dst").begin_array().value(v.dst.x).value(v.dst.y).end_array();
          jw.key("key").value(static_cast<std::uint64_t>(v.key));
          jw.key("detail").value(v.detail);
          jw.end_object();
        }
        jw.end_array();
        jw.end_object();
      } else {
        std::cout << "pattern " << label << ": ";
        ftmesh::verify::print_audit_report(std::cout, report);
      }
    }
  }
  if (json) {
    jw.end_array();
    std::cout << "\n";
  } else {
    std::cout << (all_ok ? "audit PASSED" : "audit FAILED") << "\n";
  }
  return all_ok ? 0 : 1;
}

// Probabilistic network-(dis)connection estimate under i.i.d. node and
// link faults, cross-validated by Monte-Carlo sampling (--trials 0 skips
// the sampling pass).
int cmd_reliability(const Cli& cli) {
  const int width = static_cast<int>(cli.get_int("width", 8));
  const int height = static_cast<int>(cli.get_int("height", 8));
  const double p = cli.get_double("node-prob", 0.01);
  const double q = cli.get_double("link-prob", 0.01);
  const int trials = static_cast<int>(cli.get_int("trials", 10000));
  const auto seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1));

  const ftmesh::topology::Mesh mesh(width, height);
  const ftmesh::analysis::ReliabilityModel model(mesh, p, q);
  const double estimate = model.disconnection_estimate();
  ftmesh::analysis::MonteCarloReliability mc;
  if (trials > 0) {
    mc = model.monte_carlo(trials, ftmesh::sim::Rng(seed).derive(0x5E));
  }

  if (cli.flag("json")) {
    ftmesh::report::JsonWriter jw(std::cout);
    jw.begin_object();
    jw.key("width").value(width);
    jw.key("height").value(height);
    jw.key("node_fault_prob").value(p);
    jw.key("link_fault_prob").value(q);
    jw.key("disconnection_estimate").value(estimate);
    if (trials > 0) {
      jw.key("mc_trials").value(mc.trials);
      jw.key("mc_disconnected").value(mc.disconnected);
      jw.key("mc_estimate").value(mc.estimate);
      jw.key("mc_std_error").value(mc.std_error);
    }
    jw.end_object();
    std::cout << "\n";
    return 0;
  }
  std::cout << width << "x" << height << " mesh, p(node)=" << p
            << ", p(link)=" << q << "\n"
            << "analytic P[disconnected] = " << estimate << "\n";
  if (trials > 0) {
    std::cout << "monte-carlo (" << mc.trials
              << " trials): " << mc.estimate << " +/- " << mc.std_error
              << " (" << mc.disconnected << " disconnected)\n";
  }
  return 0;
}

int cmd_algorithms() {
  for (const auto& name : ftmesh::routing::algorithm_names()) {
    std::cout << name << "\n";
  }
  return 0;
}

void usage() {
  std::cerr << "usage: ftmesh "
               "<run|sweep|saturation|faults|campaign|campaign-merge|verify|"
               "audit|reliability|algorithms> [flags]\n(see the header of "
               "tools/ftmesh.cpp)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Cli cli(argc - 1, argv + 1);
  try {
    if (cmd == "run") return cmd_run(cli);
    if (cmd == "sweep") return cmd_sweep(cli);
    if (cmd == "saturation") return cmd_saturation(cli);
    if (cmd == "faults") return cmd_faults(cli);
    if (cmd == "campaign") return cmd_campaign(cli);
    if (cmd == "campaign-merge") return cmd_campaign_merge(cli);
    if (cmd == "verify") return cmd_verify(cli);
    if (cmd == "audit") return cmd_audit(cli);
    if (cmd == "reliability") return cmd_reliability(cli);
    if (cmd == "algorithms") return cmd_algorithms();
  } catch (const std::exception& e) {
    std::cerr << "ftmesh: " << e.what() << "\n";
    return 1;
  }
  usage();
  return 2;
}
