#!/usr/bin/env sh
# Checks (never rewrites) formatting against .clang-format.
#
#   tools/check_format.sh [file...]
#
# Without arguments every tracked C++ source under src/, tests/, bench/,
# examples/ and tools/ is checked; with arguments only those files are.
# Exits 0 when everything is clean or clang-format is not installed
# (developer machines without LLVM degrade gracefully); exits 1 and
# prints a unified diff per offending file otherwise.  Set
# CLANG_FORMAT_REQUIRE=1 to fail instead of skipping when the binary is
# missing.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

format_bin=${CLANG_FORMAT:-clang-format}
if ! command -v "${format_bin}" >/dev/null 2>&1; then
  if [ "${CLANG_FORMAT_REQUIRE:-0}" = "1" ]; then
    echo "check_format: '${format_bin}' not found and CLANG_FORMAT_REQUIRE=1" >&2
    exit 1
  fi
  echo "check_format: '${format_bin}' not found; skipping (install LLVM or set CLANG_FORMAT)" >&2
  exit 0
fi

if [ $# -gt 0 ]; then
  files=$(printf '%s\n' "$@")
else
  files=$(cd "${repo_root}" && git ls-files \
    'src/**/*.cpp' 'src/**/*.hpp' 'tests/*.cpp' 'bench/*.cpp' \
    'examples/*.cpp' 'tools/*.cpp')
fi

status=0
for f in ${files}; do
  case "${f}" in
    /*) path=${f} ;;
    *) path=${repo_root}/${f} ;;
  esac
  if ! "${format_bin}" --style=file "${path}" | diff -u "${path}" - >/dev/null; then
    echo "== needs formatting: ${f}"
    "${format_bin}" --style=file "${path}" | diff -u "${path}" - || true
    status=1
  fi
done
exit ${status}
